//! Regenerates every table and figure of the paper in one run and prints the
//! corresponding rows. Used to produce the numbers recorded in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! FEDTUNE_SCALE=default cargo run --release --example full_report
//! ```
//!
//! `FEDTUNE_SCALE` may be `smoke` (seconds), `default` (minutes, the numbers
//! in EXPERIMENTS.md), or `paper` (the paper's raw budgets; hours).

use feddata::Benchmark;
use fedtune::fedtune_core::experiments::heterogeneity::{
    data_heterogeneity_report, min_client_report, run_data_heterogeneity, run_min_client_scatter,
    run_systems_heterogeneity, systems_heterogeneity_report,
};
use fedtune::fedtune_core::experiments::methods::{
    paper_noise_settings, run_headline, run_method_comparison_with,
};
use fedtune::fedtune_core::experiments::privacy::{privacy_report, run_privacy_sweep};
use fedtune::fedtune_core::experiments::proxy::{
    run_proxy_matrix, run_proxy_vs_noisy, run_transfer_pairs, transfer_report,
};
use fedtune::fedtune_core::experiments::space_ablation::run_space_ablation;
use fedtune::fedtune_core::experiments::subsampling::{
    budget_report, run_budget_curves, run_subsampling_sweep_with, subsampling_report,
};
use fedtune::fedtune_core::experiments::table1::DatasetTable;
use fedtune::fedtune_core::{ExecutionPolicy, ExperimentScale, TrialRunner};

fn scale_from_env() -> ExperimentScale {
    match std::env::var("FEDTUNE_SCALE").as_deref() {
        Ok("paper") => ExperimentScale::paper(),
        Ok("smoke") => ExperimentScale::smoke(),
        _ => ExperimentScale::default_scale(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    // FEDTUNE_THREADS overrides the trial fan-out (1 = sequential, N = N
    // threads, 0/unset = all cores); results are bit-identical either way.
    let runner = TrialRunner::new(ExecutionPolicy::from_env());
    let seed = 2026;
    println!("fedtune full report — scale: {scale:?}\n");

    println!("---- Table 1/2 ----");
    let table = DatasetTable::generate(&scale, seed)?;
    println!("{}", table.to_text());

    println!("---- Fig. 3: client subsampling ----");
    let mut sweeps = Vec::new();
    for &b in &Benchmark::ALL {
        eprintln!("[fig3] {b}");
        sweeps.push(run_subsampling_sweep_with(&runner, b, &scale, seed)?);
    }
    println!("{}", subsampling_report(&sweeps).to_table());

    println!("---- Fig. 5: budget curves ----");
    let mut curves = Vec::new();
    for &b in &Benchmark::ALL {
        eprintln!("[fig5] {b}");
        curves.push(run_budget_curves(b, &scale, seed)?);
    }
    println!("{}", budget_report(&curves).to_table());

    println!("---- Fig. 4: data heterogeneity ----");
    let mut het = Vec::new();
    for &b in &Benchmark::ALL {
        eprintln!("[fig4] {b}");
        het.push(run_data_heterogeneity(b, &scale, seed)?);
    }
    println!("{}", data_heterogeneity_report(&het).to_table());

    println!("---- Fig. 6: systems heterogeneity ----");
    let mut sys = Vec::new();
    for &b in &Benchmark::ALL {
        eprintln!("[fig6] {b}");
        sys.push(run_systems_heterogeneity(b, &scale, seed)?);
    }
    println!("{}", systems_heterogeneity_report(&sys).to_table());

    println!("---- Fig. 7: min client error scatter ----");
    let mut scatters = Vec::new();
    for &b in &Benchmark::ALL {
        eprintln!("[fig7] {b}");
        scatters.push(run_min_client_scatter(b, &scale, seed)?);
    }
    let fig7 = min_client_report(&scatters);
    // The scatter has one row per configuration; print only the notes to keep
    // the report readable, plus the counts.
    for note in &fig7.notes {
        println!("note: {note}");
    }
    println!();

    println!("---- Fig. 9: privacy ----");
    let mut priv_sweeps = Vec::new();
    for &b in &Benchmark::ALL {
        eprintln!("[fig9] {b}");
        priv_sweeps.push(run_privacy_sweep(b, &scale, seed)?);
    }
    println!("{}", privacy_report(&priv_sweeps).to_table());

    println!("---- Fig. 8 / 15 / 16: method comparison (cifar10-like) ----");
    eprintln!("[fig8] cifar10-like");
    let comparison = run_method_comparison_with(
        &runner,
        Benchmark::Cifar10Like,
        &scale,
        &paper_noise_settings(),
        seed,
    )?;
    println!("{}", comparison.to_online_report()?.to_table());
    let third = (scale.total_budget / 3).max(1);
    println!("{}", comparison.to_bars_report("fig15", third)?.to_table());
    println!(
        "{}",
        comparison
            .to_bars_report("fig16", scale.total_budget)?
            .to_table()
    );

    println!("---- Fig. 1: headline ----");
    eprintln!("[fig1]");
    let headline = run_headline(&scale, seed)?;
    println!("{}", headline.to_report().to_table());

    println!("---- Fig. 10/14: HP transfer ----");
    eprintln!("[fig10]");
    let analyses = run_transfer_pairs(&scale, seed)?;
    let fig10 = transfer_report(&analyses);
    for note in &fig10.notes {
        println!("note: {note}");
    }
    println!();

    println!("---- Fig. 11: proxy matrix ----");
    eprintln!("[fig11]");
    let matrix = run_proxy_matrix(&scale, seed)?;
    println!("{}", matrix.to_report().to_table());

    println!("---- Fig. 12: proxy vs noisy evaluation ----");
    for &b in &Benchmark::ALL {
        eprintln!("[fig12] {b}");
        let result = run_proxy_vs_noisy(b, &scale, seed)?;
        println!("{}", result.to_report().to_table());
    }

    println!("---- Fig. 13: search-space ablation (cifar10-like) ----");
    eprintln!("[fig13]");
    let ablation = run_space_ablation(Benchmark::Cifar10Like, &scale, seed)?;
    println!("{}", ablation.to_report().to_table());

    println!("full report complete");
    Ok(())
}
