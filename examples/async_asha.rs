//! Asynchronous ASHA on the event-driven virtual-time executor: the
//! straggler scenario.
//!
//! The same ASHA ladder runs twice under heavy-tailed client runtimes —
//! once rung-synchronously (every promotion waits for the whole rung, so
//! one straggling client stalls all virtual workers) and once
//! asynchronously (promote on completion, no barrier). Both campaigns are
//! fully deterministic: virtual timelines depend only on the schedule and
//! the cost model, never on real thread counts.
//!
//! ```text
//! cargo run --release --example async_asha
//! ```
//!
//! `FEDTUNE_THREADS` overrides the real-compute fan-out (1 = sequential,
//! N = N threads, 0/unset = all cores). With `FEDTUNE_BENCH_JSON=1` the run
//! writes `BENCH_async_asha.json` including the simulated throughput. With
//! `FEDTUNE_TRACE=1` it also exports `trace-async_asha.json` — the Chrome
//! `trace_event` timeline of every campaign's virtual workers, loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` — plus
//! `metrics-async_asha.json`, the full metrics-registry snapshot.

use feddata::Benchmark;
use fedtune::fedtune_core::experiments::stragglers::{
    run_straggler_comparison, straggler_cost_model,
};
use fedtune::fedtune_core::{ExecutionPolicy, ExperimentScale};
use fedtune::{feddata, fedsim, fedtrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::smoke();
    let policy = ExecutionPolicy::from_env();
    let mut summary = fedbench::BenchSummary::new("async_asha");

    let fedsim::CostModel::HeterogeneousClients(model) = straggler_cost_model(&scale, 0) else {
        unreachable!("the straggler scenario models client heterogeneity");
    };
    println!(
        "Straggler scenario: {} clients, {} per round, Pareto tail α = {}, heavy tail ⇒",
        model.num_clients, model.clients_per_round, model.tail_alpha
    );
    println!("a few clients are dramatically slower, and synchronous rungs wait for them.\n");

    let workers = [2usize, 8];
    let comparison = summary.time("straggler_comparison", 2 * workers.len() as u64, || {
        run_straggler_comparison(policy, Benchmark::Cifar10Like, &scale, &workers, 0)
    })?;

    let mut total_evaluations = 0u64;
    let mut total_sim = 0.0;
    for run in &comparison.runs {
        println!(
            "{:>10} @ {} workers: {:>3} evaluations in {:>7.1} sim-s  ({:>6.1} trials/sim-h), \
             selected true error {:.2}%",
            run.method,
            run.workers,
            run.evaluations,
            run.sim_elapsed,
            run.trials_per_sim_hour(),
            run.selected_true_error_within_sim(run.sim_elapsed)
                .expect("campaign evaluated something")
                * 100.0
        );
        total_evaluations += run.evaluations as u64;
        total_sim += run.sim_elapsed;
    }
    summary.record_sim(total_sim, total_evaluations);

    println!("\nTime-to-accuracy (selected configuration's true error over simulated time):");
    println!("{}", comparison.to_report()?.to_table());
    println!("Promote-on-completion keeps every virtual worker busy: async ASHA reaches");
    println!("its selection in less simulated wall-clock than the rung-synchronous ladder.");

    if let Some(trace) = fedtrace::global_if_enabled() {
        let tracks: Vec<fedtrace::TimelineTrack> = comparison
            .runs
            .iter()
            .map(|run| {
                fedtrace::TimelineTrack::new(
                    format!("{} @ {} workers", run.method, run.workers),
                    run.timeline.clone(),
                )
            })
            .collect();
        std::fs::write(
            "trace-async_asha.json",
            fedtrace::virtual_timeline_json(&tracks),
        )?;
        let snapshot = trace.snapshot();
        std::fs::write(
            "metrics-async_asha.json",
            serde_json::to_string_pretty(&snapshot)?,
        )?;
        summary.record_metrics(snapshot);
        println!("\nwrote trace-async_asha.json (open it in Perfetto: https://ui.perfetto.dev)");
        println!("wrote metrics-async_asha.json");
    }
    summary.write_if_enabled();
    Ok(())
}
