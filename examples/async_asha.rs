//! Asynchronous ASHA on the event-driven virtual-time executor: the
//! straggler scenario.
//!
//! The same ASHA ladder runs twice under heavy-tailed client runtimes —
//! once rung-synchronously (every promotion waits for the whole rung, so
//! one straggling client stalls all virtual workers) and once
//! asynchronously (promote on completion, no barrier). Both campaigns are
//! fully deterministic: virtual timelines depend only on the schedule and
//! the cost model, never on real thread counts.
//!
//! ```text
//! cargo run --release --example async_asha
//! ```
//!
//! `FEDTUNE_THREADS` overrides the real-compute fan-out (1 = sequential,
//! N = N threads, 0/unset = all cores). With `FEDTUNE_BENCH_JSON=1` the run
//! writes `BENCH_async_asha.json` including the simulated throughput. With
//! `FEDTUNE_TRACE=1` it also exports `trace-async_asha.json` — the Chrome
//! `trace_event` timeline of every campaign's virtual workers, loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` — plus
//! `metrics-async_asha.json`, the full metrics-registry snapshot.

use feddata::Benchmark;
use fedtune::fedtune_core::experiments::methods::TuningMethod;
use fedtune::fedtune_core::experiments::stragglers::{
    run_straggler_comparison, straggler_cost_model,
};
use fedtune::fedtune_core::{
    run_event_driven_concurrent_traced, run_event_driven_traced, BatchFederatedObjective,
    BenchmarkContext, ExecutionPolicy, ExperimentScale, NoiseConfig, VirtualExecution,
};
use fedtune::{feddata, fedmath, fedsim, fedtrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::smoke();
    let policy = ExecutionPolicy::from_env();
    let mut summary = fedbench::BenchSummary::new("async_asha");

    let fedsim::CostModel::HeterogeneousClients(model) = straggler_cost_model(&scale, 0) else {
        unreachable!("the straggler scenario models client heterogeneity");
    };
    println!(
        "Straggler scenario: {} clients, {} per round, Pareto tail α = {}, heavy tail ⇒",
        model.num_clients, model.clients_per_round, model.tail_alpha
    );
    println!("a few clients are dramatically slower, and synchronous rungs wait for them.\n");

    let workers = [2usize, 8];
    let comparison = summary.time("straggler_comparison", 2 * workers.len() as u64, || {
        run_straggler_comparison(policy, Benchmark::Cifar10Like, &scale, &workers, 0)
    })?;

    let mut total_evaluations = 0u64;
    let mut total_sim = 0.0;
    for run in &comparison.runs {
        println!(
            "{:>10} @ {} workers: {:>3} evaluations in {:>7.1} sim-s  ({:>6.1} trials/sim-h), \
             selected true error {:.2}%",
            run.method,
            run.workers,
            run.evaluations,
            run.sim_elapsed,
            run.trials_per_sim_hour(),
            run.selected_true_error_within_sim(run.sim_elapsed)
                .expect("campaign evaluated something")
                * 100.0
        );
        total_evaluations += run.evaluations as u64;
        total_sim += run.sim_elapsed;
    }
    summary.record_sim(total_sim, total_evaluations);

    println!("\nTime-to-accuracy (selected configuration's true error over simulated time):");
    println!("{}", comparison.to_report()?.to_table());
    println!("Promote-on-completion keeps every virtual worker busy: async ASHA reaches");
    println!("its selection in less simulated wall-clock than the rung-synchronous ladder.");

    // Cross-trial concurrent evaluation: the same async campaign once more,
    // first through the blocking driver, then with every in-flight virtual
    // trial training concurrently on `FEDTUNE_THREADS` real threads. The
    // outcomes must match bit for bit — real parallelism buys wall clock,
    // never a different result.
    let threads = policy.pool_threads();
    let seed = 0u64;
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed)?;
    let method = TuningMethod::AsyncAsha;
    let sim = VirtualExecution::new(3, straggler_cost_model(&scale, seed));
    let trace = fedtrace::global_if_enabled();
    let fresh_objective = || {
        BatchFederatedObjective::new(
            &ctx,
            NoiseConfig::paper_noisy(),
            method.planned_evaluations(&scale),
            fedmath::rng::derive_seed(seed, 0),
        )
    };

    let start = std::time::Instant::now();
    let mut scheduler = method.scheduler(&scale)?;
    let mut objective = fresh_objective()?;
    let mut rng = fedmath::rng::rng_for(seed, 1);
    let blocking = run_event_driven_traced(
        scheduler.as_mut(),
        ctx.space(),
        &mut objective,
        &mut rng,
        &sim,
        trace,
    )?;
    let blocking_wall = start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    let mut scheduler = method.scheduler(&scale)?;
    let mut objective = fresh_objective()?;
    let mut rng = fedmath::rng::rng_for(seed, 1);
    let concurrent = run_event_driven_concurrent_traced(
        scheduler.as_mut(),
        ctx.space(),
        &mut objective,
        &mut rng,
        &sim,
        threads,
        trace,
    )?;
    let concurrent_wall = start.elapsed().as_secs_f64();
    assert_eq!(
        blocking, concurrent,
        "the concurrent executor moved a bit of the campaign outcome"
    );
    summary.push(
        "concurrent_executor_campaign",
        concurrent_wall,
        concurrent.outcome.num_evaluations() as u64,
    );
    println!(
        "\nConcurrent executor @ {threads} real thread(s): {} evaluations in {:.2}s wall",
        concurrent.outcome.num_evaluations(),
        concurrent_wall
    );
    println!(
        "blocking driver for reference: {blocking_wall:.2}s wall — outcomes are bit-identical"
    );

    if let Some(trace) = fedtrace::global_if_enabled() {
        let tracks: Vec<fedtrace::TimelineTrack> = comparison
            .runs
            .iter()
            .map(|run| {
                fedtrace::TimelineTrack::new(
                    format!("{} @ {} workers", run.method, run.workers),
                    run.timeline.clone(),
                )
            })
            .collect();
        std::fs::write(
            "trace-async_asha.json",
            fedtrace::virtual_timeline_json(&tracks),
        )?;
        // Wall-domain phase profile of the drivers above: how real time
        // split between suggesting (scheduler polls + dispatch), evaluating
        // (training on worker threads), and delivering results.
        let wall = trace.wall_profile();
        if !wall.is_empty() {
            std::fs::write("trace-async_asha-phases.json", wall.to_chrome_json())?;
            println!("wrote trace-async_asha-phases.json (wall-domain suggest/evaluate/deliver)");
        }
        let snapshot = trace.snapshot();
        std::fs::write(
            "metrics-async_asha.json",
            serde_json::to_string_pretty(&snapshot)?,
        )?;
        println!(
            "thread pool: {} tasks, {} queue round-trips avoided",
            snapshot.counter("exec.pool.tasks").unwrap_or(0),
            snapshot.counter("exec.pool.steals_avoided").unwrap_or(0)
        );
        summary.record_metrics(snapshot);
        println!("wrote trace-async_asha.json (open it in Perfetto: https://ui.perfetto.dev)");
        println!("wrote metrics-async_asha.json");
    }
    summary.write_if_enabled();
    Ok(())
}
