//! Regenerates Table 1/2 of the paper: statistics of the four synthetic
//! federated benchmarks at the default (CPU-friendly) scale.
//!
//! ```text
//! cargo run --release --example dataset_stats
//! ```

use fedtune::fedtune_core::experiments::table1::DatasetTable;
use fedtune::fedtune_core::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::default_scale();
    let table = DatasetTable::generate(&scale, 42)?;
    println!("Dataset statistics (Table 1/2 of the paper, default scale):\n");
    println!("{}", table.to_text());
    println!("{}", table.to_report().to_table());
    Ok(())
}
