//! Regenerates Table 1/2 of the paper: statistics of the four synthetic
//! federated benchmarks at the default (CPU-friendly) scale — plus the
//! population-level view: the same four benchmark families scaled out to a
//! million lazy clients each, summarised (size quantiles, tail skew,
//! availability coverage) **without materializing a single example**.
//!
//! ```text
//! cargo run --release --example dataset_stats
//! ```
//!
//! `FEDPOP_CLIENTS` overrides the population size of the second section
//! (default 1,000,000).

use fedtune::feddata::Benchmark;
use fedtune::fedpop::{AvailabilityModel, PopulationSpec, PopulationSummary, SyntheticPopulation};
use fedtune::fedtune_core::experiments::table1::DatasetTable;
use fedtune::fedtune_core::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::default_scale();
    let table = DatasetTable::generate(&scale, 42)?;
    println!("Dataset statistics (Table 1/2 of the paper, default scale):\n");
    println!("{}", table.to_text());
    println!("{}", table.to_report().to_table());

    let n: u64 = std::env::var("FEDPOP_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    println!("\nPopulation-level statistics ({n} lazy clients per family, 4096-client probe):\n");
    for &benchmark in &Benchmark::ALL {
        // A 40%-of-day availability window, so the coverage row is visible.
        let spec = PopulationSpec::benchmark(benchmark, n)
            .with_availability(AvailabilityModel::diurnal(0.4));
        let population = SyntheticPopulation::new(spec, 42)?;
        let summary = PopulationSummary::probe(&population, 4_096)?;
        println!("-- {benchmark} --\n{}\n", summary.to_text());
    }
    Ok(())
}
